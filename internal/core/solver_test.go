package core

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"ursa/internal/lp"
	"ursa/internal/mip"
)

// randomModel generates a seeded random optimization model: 1–5 services,
// 1–3 request classes, 1–3 targets with partially shared paths and visit
// counts up to 2, noisy latency distributions, a mix of loose and
// unsatisfiable latency targets, and occasionally the equal-split ablation
// or a tiny search budget. It is the input space for the solver-equivalence
// property test.
func randomModel(rng *rand.Rand) *Model {
	nSvc := 1 + rng.Intn(5)
	nCls := 1 + rng.Intn(3)
	classes := make([]string, nCls)
	for c := range classes {
		classes[c] = fmt.Sprintf("c%d", c)
	}
	profiles := make(map[string]*Profile, nSvc)
	loads := make(map[string]map[string]float64, nSvc)
	svcs := make([]string, nSvc)
	for i := range svcs {
		name := fmt.Sprintf("svc%02d", i)
		svcs[i] = name
		nPts := 1 + rng.Intn(4)
		pts := make([]LPRPoint, 0, nPts)
		for pi := 0; pi < nPts; pi++ {
			lpr := 20 * float64(pi+1) * (0.8 + 0.4*rng.Float64())
			pt := LPRPoint{
				Replicas:    nPts - pi,
				LPR:         map[string]float64{},
				RateSamples: map[string][]float64{},
				Latency:     map[string][]float64{},
			}
			for _, cls := range classes {
				pt.LPR[cls] = lpr * (0.9 + 0.2*rng.Float64())
				pt.RateSamples[cls] = []float64{lpr * 0.95, lpr, lpr * 1.05}
				n := 30 + rng.Intn(120)
				samples := make([]float64, n)
				base := 5 + 20*float64(pi+1)*rng.Float64()
				for k := range samples {
					samples[k] = base * math.Exp(rng.NormFloat64()*0.5)
				}
				pt.Latency[cls] = samples
			}
			pts = append(pts, pt)
		}
		profiles[name] = syntheticProfile(name, 1+rng.Float64()*7, pts...)
		ld := map[string]float64{}
		for _, cls := range classes {
			if rng.Float64() < 0.8 {
				ld[cls] = 5 + rng.Float64()*100
			}
		}
		loads[name] = ld
	}

	percGrid := []float64{50, 90, 95, 99, 99.5, 99.9}
	tightness := []float64{0.3, 1, 2, 6, 25}
	nTgt := 1 + rng.Intn(3)
	targets := make([]ClassTarget, 0, nTgt)
	for t := 0; t < nTgt; t++ {
		cls := classes[rng.Intn(nCls)]
		pathLen := 1 + rng.Intn(nSvc)
		perm := rng.Perm(nSvc)[:pathLen]
		path := make([]PathVisit, 0, pathLen)
		for _, si := range perm {
			path = append(path, PathVisit{Service: svcs[si], Class: cls, Count: 1 + rng.Intn(2)})
		}
		targets = append(targets, ClassTarget{
			Name:       fmt.Sprintf("t%d-%s", t, cls),
			Percentile: percGrid[rng.Intn(len(percGrid))],
			TargetMs:   tightness[rng.Intn(len(tightness))] * 30 * float64(pathLen),
			Path:       path,
		})
	}
	m := &Model{Profiles: profiles, Targets: targets, Loads: loads}
	if rng.Float64() < 0.2 {
		m.EqualSplitPercentiles = true
	}
	if rng.Float64() < 0.2 {
		m.TargetScale = 1
	}
	if rng.Float64() < 0.15 {
		m.NodeBudget = 1 + rng.Intn(4)
	}
	return m
}

// mustMatchSolutions asserts the two solve outcomes are bit-identical in
// everything the API promises: picks, costs, bounds and percentile
// assignment. Nodes is exempt (the fast solver prunes subtrees the
// reference walks) but must never exceed the reference's count.
func mustMatchSolutions(t *testing.T, tag string, want *Solution, wantErr error, got *Solution, gotErr error) {
	t.Helper()
	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("%s: error mismatch: reference %v, fast %v", tag, wantErr, gotErr)
	}
	if wantErr != nil {
		if wantErr.Error() != gotErr.Error() {
			t.Fatalf("%s: error text mismatch: reference %q, fast %q", tag, wantErr, gotErr)
		}
		return
	}
	if want.TotalCPUs != got.TotalCPUs {
		t.Fatalf("%s: TotalCPUs: reference %v, fast %v", tag, want.TotalCPUs, got.TotalCPUs)
	}
	if got.Nodes > want.Nodes {
		t.Fatalf("%s: fast solver visited more nodes (%d) than reference (%d)", tag, got.Nodes, want.Nodes)
	}
	if len(want.Choices) != len(got.Choices) {
		t.Fatalf("%s: choice count: reference %d, fast %d", tag, len(want.Choices), len(got.Choices))
	}
	for name, w := range want.Choices {
		g := got.Choices[name]
		if g == nil {
			t.Fatalf("%s: fast solution missing choice for %s", tag, name)
		}
		if w.PointIndex != g.PointIndex || w.CostCPUs != g.CostCPUs {
			t.Fatalf("%s: choice %s: reference (pt=%d cost=%v), fast (pt=%d cost=%v)",
				tag, name, w.PointIndex, w.CostCPUs, g.PointIndex, g.CostCPUs)
		}
		if !reflect.DeepEqual(w.LPR, g.LPR) {
			t.Fatalf("%s: choice %s LPR: reference %v, fast %v", tag, name, w.LPR, g.LPR)
		}
	}
	if !reflect.DeepEqual(want.BoundMs, got.BoundMs) {
		t.Fatalf("%s: BoundMs: reference %v, fast %v", tag, want.BoundMs, got.BoundMs)
	}
	if !reflect.DeepEqual(want.PercentileChoice, got.PercentileChoice) {
		t.Fatalf("%s: PercentileChoice: reference %v, fast %v", tag, want.PercentileChoice, got.PercentileChoice)
	}
}

// TestSolverMatchesReferenceProperty is the equivalence property test: over
// seeded random models (feasible, infeasible, equal-split, budget-capped),
// the fast solver's output is bit-identical to the retained reference.
func TestSolverMatchesReferenceProperty(t *testing.T) {
	feasible, infeasible, capped, equalSplit := 0, 0, 0, 0
	for seed := int64(0); seed < 60; seed++ {
		m := randomModel(rand.New(rand.NewSource(seed)))
		want, wantErr := m.solveReference()
		got, gotErr := m.Solve()
		mustMatchSolutions(t, fmt.Sprintf("seed %d", seed), want, wantErr, got, gotErr)
		switch {
		case wantErr != nil:
			infeasible++
		default:
			feasible++
		}
		if m.NodeBudget > 0 {
			capped++
		}
		if m.EqualSplitPercentiles {
			equalSplit++
		}
	}
	// The generator must actually cover the interesting regimes; if a tweak
	// collapses one of these counters the test has stopped testing it.
	if feasible < 10 || infeasible < 5 || capped < 3 || equalSplit < 3 {
		t.Fatalf("generator coverage too thin: feasible=%d infeasible=%d capped=%d equalSplit=%d",
			feasible, infeasible, capped, equalSplit)
	}
}

// TestSolverMatchesReferenceCapped pins the budget-capped case explicitly:
// with NodeBudget as small as a single leaf evaluation, both solvers must
// stop at the same incumbent because both count only non-dominated leaves.
func TestSolverMatchesReferenceCapped(t *testing.T) {
	for _, budget := range []int{1, 2, 3, 7} {
		for seed := int64(100); seed < 110; seed++ {
			m := randomModel(rand.New(rand.NewSource(seed)))
			m.NodeBudget = budget
			want, wantErr := m.solveReference()
			got, gotErr := m.Solve()
			mustMatchSolutions(t, fmt.Sprintf("budget %d seed %d", budget, seed), want, wantErr, got, gotErr)
		}
	}
}

// TestSolverNoCrossSolveLeak guards the arena reuse: solving model A then
// model B on one reused solver must give exactly the answer a fresh solver
// gives for B, for every ordered pair of a diverse model set. A stale-arena
// read would make results depend on which pooled solver a caller drew —
// nondeterminism that only shows up under concurrent pool traffic.
func TestSolverNoCrossSolveLeak(t *testing.T) {
	models := make([]*Model, 40)
	for i := range models {
		models[i] = randomModel(rand.New(rand.NewSource(int64(i * 7))))
	}
	withActive := func(m *Model) *Model {
		if active := m.activeTargets(); len(active) != len(m.Targets) {
			mm := *m
			mm.Targets = active
			return &mm
		}
		return m
	}
	type res struct {
		sol *Solution
		err error
	}
	fresh := make([]res, len(models))
	for i, m := range models {
		s := &solver{}
		sol, err := s.solve(withActive(m))
		fresh[i] = res{sol, err}
	}
	shared := &solver{}
	for i := range models {
		for j := range models {
			_, _ = shared.solve(withActive(models[i]))
			sol, err := shared.solve(withActive(models[j]))
			if (err == nil) != (fresh[j].err == nil) {
				t.Fatalf("pair (%d,%d): err %v vs fresh %v", i, j, err, fresh[j].err)
			}
			if err != nil {
				continue
			}
			sol.Nodes, fresh[j].sol.Nodes = 0, 0
			if !reflect.DeepEqual(sol, fresh[j].sol) {
				t.Fatalf("pair (%d,%d): cross-solve leak:\n got %+v\nwant %+v", i, j, sol, fresh[j].sol)
			}
		}
	}
}

// TestSolverCompileMatchesCompile pins the cached-percentile compile against
// the sample-recomputing one: identical option sets, costs and latency rows,
// bit for bit.
func TestSolverCompileMatchesCompile(t *testing.T) {
	for seed := int64(200); seed < 210; seed++ {
		m := randomModel(rand.New(rand.NewSource(seed)))
		if active := m.activeTargets(); len(active) != len(m.Targets) {
			m.Targets = active
		}
		svcNames, opts, _, _, err := m.compile()
		s := &solver{m: m}
		fastErr := s.compile()
		if (err == nil) != (fastErr == nil) {
			t.Fatalf("seed %d: compile error mismatch: %v vs %v", seed, err, fastErr)
		}
		if err != nil {
			if err.Error() != fastErr.Error() {
				t.Fatalf("seed %d: compile error text: %q vs %q", seed, err, fastErr)
			}
			continue
		}
		if !reflect.DeepEqual(svcNames, s.svcNames) {
			t.Fatalf("seed %d: services %v vs %v", seed, svcNames, s.svcNames)
		}
		for si := range opts {
			if len(opts[si]) != len(s.opts[si]) {
				t.Fatalf("seed %d: svc %s option count %d vs %d", seed, svcNames[si], len(opts[si]), len(s.opts[si]))
			}
			for oi := range opts[si] {
				w, g := opts[si][oi], s.opts[si][oi]
				if w.index != g.index || w.cost != g.cost {
					t.Fatalf("seed %d: svc %s option %d header mismatch", seed, svcNames[si], oi)
				}
				if !reflect.DeepEqual(w.lat, g.lat) {
					t.Fatalf("seed %d: svc %s option %d rows: %v vs %v", seed, svcNames[si], oi, w.lat, g.lat)
				}
			}
		}
	}
}

// TestDominancePruningEngages builds a model with a strictly dominated
// operating point and checks the fast solver actually skips it (fewer nodes
// than the reference) while returning the identical solution.
func TestDominancePruningEngages(t *testing.T) {
	m := twoServiceModel(150)
	// A third point for "a": same cost driver (LPR 50 → same replica count
	// as the 10ms point) but slower everywhere → dominated by... nothing,
	// cost ties are kept. Make it strictly more expensive AND slower: lower
	// LPR than the 10ms point with worse latency.
	pa := m.Profiles["a"]
	pa.Points = append(pa.Points, point(3, 25, 50, "req"))
	pa.SortPoints()
	want, wantErr := m.solveReference()
	got, gotErr := m.Solve()
	mustMatchSolutions(t, "dominated", want, wantErr, got, gotErr)
	if gotErr == nil && got.Nodes >= want.Nodes {
		t.Fatalf("dominance pruning did not engage: fast %d nodes, reference %d", got.Nodes, want.Nodes)
	}
}

// TestExactMIPMatchesFastSolverRandom extends the mipbridge cross-check to
// random small models: the generic branch-and-bound over the exact MIP (1)
// formulation agrees with the fast solver's objective on feasible models and
// on infeasibility.
func TestExactMIPMatchesFastSolverRandom(t *testing.T) {
	checked := 0
	for seed := int64(300); seed < 340 && checked < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := randomModel(rng)
		if len(m.Profiles) > 3 || m.EqualSplitPercentiles || m.NodeBudget > 0 {
			continue // keep the generic MIP tractable; budget/ablation are out of its scope
		}
		if active := m.activeTargets(); len(active) != len(m.Targets) {
			m.Targets = active
		}
		if len(m.Targets) == 0 {
			continue
		}
		sol, err := m.Solve()
		prob, _, mipErr := m.BuildExactMIP()
		if mipErr != nil {
			if err == nil {
				t.Fatalf("seed %d: MIP build failed (%v) but fast solver succeeded", seed, mipErr)
			}
			continue
		}
		got := mip.Solve(prob)
		if err != nil {
			if got.Status == lp.Optimal {
				t.Fatalf("seed %d: fast solver infeasible (%v) but MIP optimal obj=%v", seed, err, got.Obj)
			}
			checked++
			continue
		}
		if got.Status != lp.Optimal {
			t.Fatalf("seed %d: fast solver obj=%v but MIP status %v", seed, sol.TotalCPUs, got.Status)
		}
		if math.Abs(got.Obj-sol.TotalCPUs) > 1e-6 {
			t.Fatalf("seed %d: MIP obj %v != fast solver %v", seed, got.Obj, sol.TotalCPUs)
		}
		checked++
	}
	if checked < 5 {
		t.Fatalf("cross-checked only %d random models", checked)
	}
}
