package core

import (
	"testing"

	"ursa/internal/topology"
)

func TestClassPathReadTimeline(t *testing.T) {
	spec := topology.SocialNetwork()
	path := ClassPath(&spec, topology.ReadTimeline)
	want := map[string]int{"frontend": 1, "user-timeline": 1, "post-storage": 1}
	if len(path) != len(want) {
		t.Fatalf("path = %+v", path)
	}
	for _, v := range path {
		if want[v.Service] != v.Count || v.Class != topology.ReadTimeline {
			t.Fatalf("unexpected visit %+v", v)
		}
	}
}

func TestClassPathUploadPostExcludesSpawns(t *testing.T) {
	spec := topology.SocialNetwork()
	path := ClassPath(&spec, topology.UploadPost)
	for _, v := range path {
		switch v.Service {
		case "home-timeline", "sentiment-ml", "object-detect-ml":
			t.Fatalf("spawned service %s leaked into upload-post path", v.Service)
		}
	}
	// frontend, compose-post, text, user, url-shorten, post-storage.
	if len(path) != 6 {
		t.Fatalf("upload-post path has %d services: %+v", len(path), path)
	}
}

func TestClassPathDerivedClass(t *testing.T) {
	spec := topology.SocialNetwork()
	path := ClassPath(&spec, topology.ObjectDetect)
	want := map[string]bool{"object-detect-ml": true, "image-store": true, "post-storage": true}
	if len(path) != 3 {
		t.Fatalf("object-detect path = %+v", path)
	}
	for _, v := range path {
		if !want[v.Service] {
			t.Fatalf("unexpected service %s", v.Service)
		}
	}
}

func TestClassPathMultipleVisits(t *testing.T) {
	spec := topology.MediaService()
	path := ClassPath(&spec, topology.TranscodeVideo)
	for _, v := range path {
		if v.Service == "video-store" && v.Count != 2 {
			t.Fatalf("transcode visits video-store %d times, want 2", v.Count)
		}
	}
}

func TestResidualUnits(t *testing.T) {
	cases := []struct {
		p    float64
		want int
	}{
		{99, 10}, {99.9, 1}, {99.8, 2}, {50, 500}, {95, 50},
	}
	for _, c := range cases {
		if got := residualUnits(c.p); got != c.want {
			t.Errorf("residualUnits(%v) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestProfileSortPoints(t *testing.T) {
	p := Profile{Points: []LPRPoint{
		{LPR: map[string]float64{"a": 30}},
		{LPR: map[string]float64{"a": 10}},
		{LPR: map[string]float64{"a": 20}},
	}}
	p.SortPoints()
	if p.Points[0].MaxLPR() != 10 || p.Points[2].MaxLPR() != 30 {
		t.Fatalf("points not sorted: %+v", p.Points)
	}
}

func TestLatencyAt(t *testing.T) {
	pt := LPRPoint{Latency: map[string][]float64{"a": {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}}}
	if got := pt.LatencyAt("a", 50); got != 5.5 {
		t.Fatalf("p50 = %v", got)
	}
	if got := pt.LatencyAt("missing", 50); got != 0 {
		t.Fatalf("missing class latency = %v", got)
	}
}

func TestTargetsFor(t *testing.T) {
	spec := topology.VideoPipeline()
	targets := TargetsFor(spec)
	if len(targets) != 2 {
		t.Fatalf("targets = %+v", targets)
	}
	for _, tgt := range targets {
		if len(tgt.Path) != 3 {
			t.Fatalf("pipeline target path = %+v", tgt.Path)
		}
	}
}
