package core

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestProfilesSaveLoadRoundTrip(t *testing.T) {
	profiles := map[string]*Profile{
		"svc": {
			Service:          "svc",
			CPUsPerReplica:   2,
			BackpressureUtil: 0.55,
			Samples:          40,
			ExploreTime:      1200,
			Points: []LPRPoint{
				point(2, 25, 12, "a", "b"),
				point(1, 50, 30, "a", "b"),
			},
		},
	}
	var buf bytes.Buffer
	if err := SaveProfiles(&buf, profiles); err != nil {
		t.Fatal(err)
	}
	got, err := LoadProfiles(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(profiles, got) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", profiles["svc"], got["svc"])
	}
}

func TestLoadProfilesRejectsGarbage(t *testing.T) {
	if _, err := LoadProfiles(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadProfiles(strings.NewReader(`{"version":9,"profiles":{}}`)); err == nil {
		t.Fatal("bad version accepted")
	}
	if _, err := LoadProfiles(strings.NewReader(`{"version":1}`)); err == nil {
		t.Fatal("missing profiles accepted")
	}
	if _, err := LoadProfiles(strings.NewReader(`{"version":1,"profiles":{"x":{}}}`)); err == nil {
		t.Fatal("malformed profile accepted")
	}
}

func TestLoadedProfilesUsableByModel(t *testing.T) {
	m := twoServiceModel(150)
	var buf bytes.Buffer
	if err := SaveProfiles(&buf, m.Profiles); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadProfiles(&buf)
	if err != nil {
		t.Fatal(err)
	}
	m.Profiles = loaded
	if _, err := m.Solve(); err != nil {
		t.Fatalf("solve with loaded profiles: %v", err)
	}
}
