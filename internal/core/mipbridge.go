package core

import (
	"fmt"
	"sort"

	"ursa/internal/mip"
)

// BuildExactMIP emits the model as the paper's MIP (1), verbatim: one-hot
// LPR vectors δ_i, one-hot percentile vectors γ_i^j, the latency and
// residual-budget constraints, and the resource objective — with the
// bilinear δ·D·γ terms linearised through auxiliary variables
// z ≥ δ + γ − 1. Ursa's optimization engine uses the specialised
// branch-and-bound in Solve (it exploits the one-hot structure directly);
// this exact formulation exists for cross-checking the two solvers against
// each other and for benchmarking the generic Gurobi-substitute path.
//
// The returned decoder maps a solution vector back to per-service point
// indices.
func (m *Model) BuildExactMIP() (mip.Problem, func(x []float64) map[string]int, error) {
	mm := *m
	mm.Targets = m.activeTargets()
	svcNames, opts, terms, budgets, err := mm.compile()
	if err != nil {
		return mip.Problem{}, nil, err
	}

	// Variable layout: [δ | γ | z].
	type deltaVar struct {
		svc int
		opt int // index into opts[svc]
	}
	type gammaVar struct {
		target, term, perc int
	}
	var deltas []deltaVar
	deltaIdx := map[[2]int]int{} // (svc, opt) → var
	for si := range svcNames {
		for oi := range opts[si] {
			deltaIdx[[2]int{si, oi}] = len(deltas)
			deltas = append(deltas, deltaVar{svc: si, opt: oi})
		}
	}
	var gammas []gammaVar
	gammaIdx := map[[3]int]int{}
	for t := range mm.Targets {
		for k := range terms[t] {
			for β := range Percentiles {
				gammaIdx[[3]int{t, k, β}] = len(deltas) + len(gammas)
				gammas = append(gammas, gammaVar{t, k, β})
			}
		}
	}
	nBinary := len(deltas) + len(gammas)

	// z variables: one per (target, term, option-of-that-term's-service, β).
	type zVar struct {
		target, term, opt, perc int
		lat                     float64
	}
	svcIdx := map[string]int{}
	for i, n := range svcNames {
		svcIdx[n] = i
	}
	var zs []zVar
	for t := range mm.Targets {
		for k, tm := range terms[t] {
			si := svcIdx[tm.service]
			for oi, op := range opts[si] {
				row := op.lat[t]
				if row == nil {
					return mip.Problem{}, nil, fmt.Errorf("core: option without latency row")
				}
				for β := range Percentiles {
					zs = append(zs, zVar{t, k, oi, β, row[β]})
				}
			}
		}
	}
	nVar := nBinary + len(zs)

	c := make([]float64, nVar)
	for vi, dv := range deltas {
		c[vi] = opts[dv.svc][dv.opt].cost
	}
	var A [][]float64
	var B []float64
	row := func() []float64 { return make([]float64, nVar) }
	addEq1 := func(vars []int) {
		r1, r2 := row(), row()
		for _, v := range vars {
			r1[v] = 1
			r2[v] = -1
		}
		A = append(A, r1, r2)
		B = append(B, 1, -1)
	}
	// One-hot δ per service.
	for si := range svcNames {
		var vars []int
		for oi := range opts[si] {
			vars = append(vars, deltaIdx[[2]int{si, oi}])
		}
		addEq1(vars)
	}
	// One-hot γ per (target, term).
	for t := range mm.Targets {
		for k := range terms[t] {
			var vars []int
			for β := range Percentiles {
				vars = append(vars, gammaIdx[[3]int{t, k, β}])
			}
			addEq1(vars)
		}
	}
	// Linearisation and latency constraints.
	latRows := make([][]float64, len(mm.Targets))
	for t := range mm.Targets {
		latRows[t] = row()
	}
	for zi, zv := range zs {
		v := nBinary + zi
		si := svcIdx[terms[zv.target][zv.term].service]
		r := row()
		r[deltaIdx[[2]int{si, zv.opt}]] = 1
		r[gammaIdx[[3]int{zv.target, zv.term, zv.perc}]] = 1
		r[v] = -1
		A = append(A, r)
		B = append(B, 1) // δ + γ − z ≤ 1  ⟺  z ≥ δ + γ − 1
		latRows[zv.target][v] = zv.lat
	}
	for t := range mm.Targets {
		A = append(A, latRows[t])
		B = append(B, mm.targetMs(t))
	}
	// Residual budgets: Σ residual(β)·γ ≤ budget.
	for t := range mm.Targets {
		r := row()
		for k := range terms[t] {
			for β, p := range Percentiles {
				r[gammaIdx[[3]int{t, k, β}]] = float64(residualUnits(p))
			}
		}
		A = append(A, r)
		B = append(B, float64(budgets[t]))
	}

	integer := make([]bool, nVar)
	for v := 0; v < nBinary; v++ {
		integer[v] = true
	}
	decode := func(x []float64) map[string]int {
		out := map[string]int{}
		for vi, dv := range deltas {
			if x[vi] > 0.5 {
				out[svcNames[dv.svc]] = opts[dv.svc][dv.opt].index
			}
		}
		return out
	}
	return mip.Problem{C: c, A: A, B: B, Integer: integer}, decode, nil
}

// ExactMIPSize reports the variable/constraint counts of the exact
// formulation — the scale the generic solver must handle.
func (m *Model) ExactMIPSize() (vars, constraints int, err error) {
	p, _, err := m.BuildExactMIP()
	if err != nil {
		return 0, 0, err
	}
	return len(p.C), len(p.A), nil
}

// PercentileGridString renders the grid for diagnostics.
func PercentileGridString() string {
	ps := append([]float64(nil), Percentiles...)
	sort.Float64s(ps)
	s := ""
	for i, p := range ps {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("p%g", p)
	}
	return s
}
