package core

import (
	"testing"

	"ursa/internal/services"
	"ursa/internal/sim"
)

// heavyService is a post-storage-like RPC service for profiling tests.
func heavyService() services.ServiceSpec {
	return services.ServiceSpec{
		Name: "post-storage", Threads: 4096, Daemons: 64, CPUs: 2,
		IngressCostMs: 0.3, IngressWindow: 24,
		Handlers: map[string][]services.Step{
			"read":  services.Seq(services.Compute{MeanMs: 2.4, CV: 0.4}),
			"write": services.Seq(services.Compute{MeanMs: 1.6, CV: 0.4}),
		},
	}
}

func TestProfileBackpressureThreshold(t *testing.T) {
	svc := heavyService()
	// Offered load ≈ 1.4 core-sec/s of handler work on 2 CPUs: saturated
	// at low limits, comfortable at the nominal limit.
	res := ProfileBackpressureThreshold(svc, map[string]float64{"read": 400, "write": 250}, ProfilerConfig{
		Seed: 7,
	})
	if res.Threshold <= 0.2 || res.Threshold >= 0.98 {
		t.Fatalf("threshold = %v, want a mid-range utilisation", res.Threshold)
	}
	if len(res.Steps) < 5 {
		t.Fatalf("only %d sweep steps", len(res.Steps))
	}
	// Proxy latency at the lowest CPU limit must be far above the converged
	// latency (the paper reports >5-10× at backpressure).
	first, last := res.Steps[0], res.Steps[len(res.Steps)-1]
	if first.ProxyP99Mean < last.ProxyP99Mean*2 {
		t.Fatalf("no backpressure visible in sweep: first %.2fms, last %.2fms",
			first.ProxyP99Mean, last.ProxyP99Mean)
	}
	if !last.Converged {
		t.Fatal("sweep never converged")
	}
	// Utilisation decreases as the limit grows (same work, more CPU).
	if first.Util <= last.Util {
		t.Fatalf("utilisation did not fall with CPU limit: %.2f → %.2f", first.Util, last.Util)
	}
}

func TestProfileMQServiceSkipsSweep(t *testing.T) {
	svc := services.ServiceSpec{
		Name: "ml", Threads: 8, CPUs: 4,
		Handlers: map[string][]services.Step{"job": services.Seq(services.Compute{MeanMs: 100})},
	}
	res := ProfileBackpressureThreshold(svc, map[string]float64{"job": 10}, ProfilerConfig{})
	if res.Threshold != 1.0 || len(res.Steps) != 0 {
		t.Fatalf("MQ service should skip the sweep: %+v", res)
	}
}

func TestComputeOnlyStripsCalls(t *testing.T) {
	steps := services.Seq(
		services.Compute{MeanMs: 1},
		services.Call{Service: "x", Mode: services.NestedRPC},
		services.Par{Branches: [][]services.Step{
			{services.Compute{MeanMs: 2}},
			{services.Spawn{Service: "y", Class: "c"}},
		}},
	)
	out := computeOnly(steps)
	if len(out) != 2 {
		t.Fatalf("computeOnly = %+v", out)
	}
	for _, st := range out {
		if _, ok := st.(services.Compute); !ok {
			t.Fatalf("non-compute step survived: %T", st)
		}
	}
}

func TestComputeOnlyEmptyHandlerGetsToken(t *testing.T) {
	out := computeOnly(services.Seq(services.Call{Service: "x", Mode: services.MQ}))
	if len(out) != 1 {
		t.Fatalf("out = %+v", out)
	}
	if c, ok := out[0].(services.Compute); !ok || c.MeanMs <= 0 {
		t.Fatalf("placeholder compute missing: %+v", out)
	}
}

func TestProfilerConfigDefaults(t *testing.T) {
	var c ProfilerConfig
	c.defaults()
	if len(c.Factors) == 0 || c.WindowsPerStep != 8 || c.Window != 30*sim.Second || c.Alpha != 0.05 {
		t.Fatalf("defaults = %+v", c)
	}
}
