package core

import (
	"time"

	"ursa/internal/services"
	"ursa/internal/sim"
)

// nowWall reports wall-clock seconds; control-plane latency accounting
// (Table VI) uses real time, not simulated time.
func nowWall() float64 { return float64(time.Now().UnixNano()) / 1e9 }

// AnomalyConfig parameterises the anomaly detector (§V.5).
type AnomalyConfig struct {
	// Interval is the detector period.
	Interval sim.Time
	// RatioDeviation triggers threshold recalculation when the request
	// ratio deviation exceeds it (load anomaly).
	RatioDeviation float64
	// SLAViolationFreq triggers re-exploration when the fraction of recent
	// windows violating a class SLA exceeds it (latency anomaly).
	SLAViolationFreq float64
	// HistoryWindows is how many recent windows the detector inspects.
	HistoryWindows int
}

func (c *AnomalyConfig) defaults() {
	if c.Interval <= 0 {
		c.Interval = 5 * sim.Minute
	}
	if c.RatioDeviation <= 0 {
		c.RatioDeviation = 1.5
	}
	if c.SLAViolationFreq <= 0 {
		c.SLAViolationFreq = 0.10
	}
	if c.HistoryWindows <= 0 {
		c.HistoryWindows = 5
	}
}

// AnomalyEvent describes a detected anomaly.
type AnomalyEvent struct {
	At      sim.Time
	Kind    string // "load" or "latency"
	Subject string // service (load) or class (latency)
	Value   float64
}

// Detector watches load ratios and SLA violations during deployment and
// asks for threshold recalculation or re-exploration when they drift from
// what exploration covered.
type Detector struct {
	cfg     AnomalyConfig
	app     *services.App
	sol     *Solution
	targets []ClassTarget

	// Recalculate, when non-nil, is invoked on load anomalies (the
	// optimization engine re-solve of §V.5).
	Recalculate func(at sim.Time, service string)
	// Reexplore, when non-nil, is invoked on latency anomalies.
	Reexplore func(at sim.Time, class string)

	Events []AnomalyEvent
}

// NewDetector builds an anomaly detector for a deployed solution.
func NewDetector(app *services.App, sol *Solution, targets []ClassTarget, cfg AnomalyConfig) *Detector {
	cfg.defaults()
	return &Detector{cfg: cfg, app: app, sol: sol, targets: targets}
}

// SetSolution swaps in recalculated thresholds.
func (d *Detector) SetSolution(sol *Solution) { d.sol = sol }

// Tick runs one detection pass.
func (d *Detector) Tick() {
	now := d.app.Eng.Now()
	from := now - sim.Time(d.cfg.HistoryWindows)*d.app.Window()
	if from < 0 {
		from = 0
	}
	d.checkLoad(now, from)
	d.checkLatency(now, from)
}

// RequestRatioDeviation measures, for a service, how far the current class
// mix is from the mix the thresholds were computed for: the ratio between
// the replicas demanded by the binding class alone and the replicas an
// aggregate (mix-faithful) scaling would demand. 1.0 means the mix matches;
// large values mean one class dominates scaling and resources are likely
// over-provisioned for the others (§V.5).
func (d *Detector) RequestRatioDeviation(service string, from, to sim.Time) float64 {
	choice := d.sol.Choices[service]
	svc := d.app.Service(service)
	if choice == nil || svc == nil {
		return 1
	}
	maxNeed, sumLoad, sumThr := 0.0, 0.0, 0.0
	for class, thr := range choice.LPR {
		counter := svc.Arrivals[class]
		if counter == nil || thr <= 0 {
			continue
		}
		load := counter.Rate(from, to)
		if need := load / thr; need > maxNeed {
			maxNeed = need
		}
		sumLoad += load
		sumThr += thr
	}
	if maxNeed == 0 || sumThr == 0 || sumLoad == 0 {
		return 1
	}
	aggregate := sumLoad / sumThr
	return maxNeed / aggregate
}

func (d *Detector) checkLoad(now, from sim.Time) {
	// Visit services in sorted order: Recalculate swaps d.sol mid-loop, so
	// when two services straddle the deviation threshold in the same tick
	// the visit order decides what the second one is compared against — map
	// order here would make whole simulation runs nondeterministic.
	for _, service := range sortedChoiceNames(d.sol) {
		dev := d.RequestRatioDeviation(service, from, now)
		if dev > d.cfg.RatioDeviation {
			d.Events = append(d.Events, AnomalyEvent{At: now, Kind: "load", Subject: service, Value: dev})
			if d.Recalculate != nil {
				d.Recalculate(now, service)
			}
		}
	}
}

func (d *Detector) checkLatency(now, from sim.Time) {
	window := d.app.Window()
	for _, tgt := range d.targets {
		rec := d.app.E2E.Class(tgt.Name)
		if rec == nil {
			continue
		}
		total, violated := 0, 0
		for w := from; w < now; w += window {
			if rec.Count(w, w+window) == 0 {
				continue
			}
			total++
			if rec.PercentileBetween(w, w+window, tgt.Percentile) > tgt.TargetMs {
				violated++
			}
		}
		if total == 0 {
			continue
		}
		freq := float64(violated) / float64(total)
		if freq > d.cfg.SLAViolationFreq {
			d.Events = append(d.Events, AnomalyEvent{At: now, Kind: "latency", Subject: tgt.Name, Value: freq})
			if d.Reexplore != nil {
				d.Reexplore(now, tgt.Name)
			}
		}
	}
}
