package core

import (
	"fmt"
	"math"
)

// solveReference is the retained reference implementation of the decision
// path: the straightforward branch-and-bound this package shipped before the
// fast solver existed. It recomputes percentile rows from raw samples on
// every call (via compile), re-sorts the option order inside every node and
// allocates fresh DP tables per leaf — deliberately: it is the simple,
// obviously-correct ground truth that the optimised solver is property-
// tested against (same picks, bounds and percentile assignment, bit for
// bit), and the honest pre-optimisation baseline for BenchmarkSolve.
//
// The only structural change from the historical code is the search budget:
// both solvers count feasibility evaluations of non-dominated leaves (see
// leafBudget), so a capped search stops at the same incumbent in both — a
// raw visited-node cap could never match, because the fast solver skips
// subtrees this walk still visits.
func (m *Model) solveReference() (*Solution, error) {
	if active := m.activeTargets(); len(active) != len(m.Targets) {
		mm := *m
		mm.Targets = active
		return mm.solveReference()
	}
	svcNames, opts, terms, budgets, err := m.compile()
	if err != nil {
		return nil, err
	}
	nSvc := len(svcNames)
	nTgt := len(m.Targets)

	// Per-target quick infeasibility data: best possible contribution per
	// service (over all options and percentiles).
	bestContrib := make([][]float64, nTgt) // [target][svcIdx]
	for t := range m.Targets {
		bestContrib[t] = make([]float64, nSvc)
		for si := range svcNames {
			best := 0.0
			found := false
			for _, op := range opts[si] {
				if op.lat[t] == nil {
					continue
				}
				for _, v := range op.lat[t] {
					if !found || v < best {
						best = v
						found = true
					}
				}
			}
			bestContrib[t][si] = best
		}
	}
	minCostFrom := make([]float64, nSvc+1)
	for si := nSvc - 1; si >= 0; si-- {
		minCost := math.Inf(1)
		for _, op := range opts[si] {
			if op.cost < minCost {
				minCost = op.cost
			}
		}
		minCostFrom[si] = minCostFrom[si+1] + minCost
	}
	dominated := dominatedFlags(opts, nTgt)

	bestCost := math.Inf(1)
	var bestPick []int
	pick := make([]int, nSvc)
	pickPos := make([]int, nSvc) // option position per service (for dominance lookups)
	nodes := 0
	leafEvals := 0
	budget := m.leafBudget()
	capped := false

	var rec func(si int, costSoFar float64, latSoFar []float64)
	rec = func(si int, costSoFar float64, latSoFar []float64) {
		nodes++
		if capped {
			return // leaf budget exhausted; incumbent (if any) stands
		}
		if costSoFar+minCostFrom[si] >= bestCost {
			return
		}
		if si == nSvc {
			clean := true
			for sj := 0; sj < nSvc; sj++ {
				if dominated[sj][pickPos[sj]] {
					clean = false
					break
				}
			}
			if clean {
				leafEvals++
				if leafEvals > budget {
					capped = true
					return
				}
			}
			// Exact feasibility via the percentile-budget DP per target.
			for t := range m.Targets {
				if _, ok := m.assignPercentiles(t, terms[t], opts, pick, svcNames, budgets[t]); !ok {
					return
				}
			}
			bestCost = costSoFar
			bestPick = append(bestPick[:0], pick...)
			return
		}
		// Optimistic per-target feasibility using best-case remaining.
		for t := range m.Targets {
			optimistic := latSoFar[t]
			for sj := si; sj < nSvc; sj++ {
				optimistic += bestContrib[t][sj]
			}
			if optimistic > m.targetMs(t) {
				return
			}
		}
		// Try options cheapest-first so the first feasible leaf is a good
		// incumbent.
		order := costOrder(opts[si], nil)
		next := make([]float64, nTgt)
		for _, oi := range order {
			op := opts[si][oi]
			for t := 0; t < nTgt; t++ {
				next[t] = latSoFar[t]
				if op.lat[t] != nil {
					// Best-case percentile for the bound (DP enforces the
					// real budget at the leaf).
					best := math.Inf(1)
					for _, v := range op.lat[t] {
						if v < best {
							best = v
						}
					}
					next[t] += best
				}
			}
			pick[si] = op.index
			pickPos[si] = oi
			rec(si+1, costSoFar+op.cost, next)
		}
	}
	rec(0, 0, make([]float64, nTgt))

	if bestPick == nil {
		return nil, fmt.Errorf("core: no feasible LPR combination for the explored allocation space")
	}

	sol := &Solution{
		Choices:          map[string]*Choice{},
		PercentileChoice: map[string][]float64{},
		BoundMs:          map[string]float64{},
		TotalCPUs:        bestCost,
		Nodes:            nodes,
	}
	for si, name := range svcNames {
		p := m.Profiles[name]
		pt := &p.Points[bestPick[si]]
		var cost float64
		for _, op := range opts[si] {
			if op.index == bestPick[si] {
				cost = op.cost
			}
		}
		sol.Choices[name] = &Choice{
			Service:     name,
			PointIndex:  bestPick[si],
			LPR:         pt.LPR,
			RateSamples: pt.RateSamples,
			CostCPUs:    cost,
		}
	}
	for t, tgt := range m.Targets {
		assign, ok := m.assignPercentiles(t, terms[t], opts, bestPick, svcNames, budgets[t])
		if !ok {
			return nil, fmt.Errorf("core: internal: winning pick infeasible for %s", tgt.Name)
		}
		sol.PercentileChoice[tgt.Name] = assign.percentiles
		sol.BoundMs[tgt.Name] = assign.bound
	}
	return sol, nil
}
