package core

import (
	"fmt"
	"math"
	"sort"

	"ursa/internal/services"
	"ursa/internal/sim"
	"ursa/internal/workload"
)

// Manager is the assembled Ursa system (Fig. 5): exploration profiles feed
// the optimization engine, whose LPR thresholds drive the resource
// controller; the anomaly detector watches deployment and triggers
// recalculation. Attach it to a running app with Run.
type Manager struct {
	Spec       services.AppSpec
	Targets    []ClassTarget
	Profiles   map[string]*Profile
	Controller *Controller
	Detector   *Detector

	// OptimizeCount/OptimizeSeconds accumulate wall-clock cost of solving
	// the performance model (the "update" path of Table VI).
	OptimizeCount   int
	OptimizeSeconds float64

	// ReSolveEpsilon enables the incremental re-solve fast path: when the
	// profiles are unchanged and every per-(service,class) load moved by
	// less than this relative fraction since the last full solve, Optimize
	// re-verifies the incumbent pick in O(terms) and reuses it (with costs
	// refreshed for the new loads) instead of re-running branch-and-bound.
	// Latency rows and certified bounds are load-independent, so the reused
	// incumbent stays feasible; within ε it also stays near-cheapest.
	// NewManager sets DefaultReSolveEpsilon — the fast path is the default
	// steady-state mode, with the full solve as fallback on any ε violation.
	// 0 disables it (a zero-value Manager literal keeps every Optimize a
	// full solve); experiments expose that via -no-fast-resolve.
	ReSolveEpsilon float64
	// FastResolveCount counts Optimize calls served by the incremental
	// path (always ≤ OptimizeCount).
	FastResolveCount int

	lastSol      *Solution
	lastLoads    map[string]map[string]float64
	lastProfiles map[string]*Profile

	app     *services.App
	tickers []*sim.Ticker
}

// TargetsFor derives the ClassTargets of every class declared in a spec.
func TargetsFor(spec services.AppSpec) []ClassTarget {
	var out []ClassTarget
	for _, cs := range spec.Classes {
		path := ClassPath(&spec, cs.Name)
		if len(path) == 0 {
			continue
		}
		out = append(out, ClassTarget{
			Name:       cs.Name,
			Percentile: cs.SLAPercentile,
			TargetMs:   cs.SLAMillis,
			Path:       path,
		})
	}
	return out
}

// DefaultReSolveEpsilon is the relative load-drift tolerance NewManager
// installs for the incremental re-solve fast path: steady-state re-solves
// whose every load moved < 5% reuse the verified incumbent instead of
// re-running branch-and-bound (~10 µs vs ~39 µs per BENCH_decision.json).
const DefaultReSolveEpsilon = 0.05

// NewManager builds a manager from exploration output, with the incremental
// re-solve fast path on at DefaultReSolveEpsilon.
func NewManager(spec services.AppSpec, profiles map[string]*Profile) *Manager {
	return &Manager{
		Spec:           spec,
		Profiles:       profiles,
		Targets:        TargetsFor(spec),
		ReSolveEpsilon: DefaultReSolveEpsilon,
	}
}

// CloneFresh returns a new manager sharing this one's spec, exploration
// profiles and fast-path setting but with pristine runtime state — deploying
// the same exploration output onto another application instance, as the
// paper does across its load scenarios.
func (m *Manager) CloneFresh() *Manager {
	return &Manager{Spec: m.Spec, Profiles: m.Profiles, Targets: m.Targets, ReSolveEpsilon: m.ReSolveEpsilon}
}

// Optimize solves the performance model for the given per-service loads and
// returns the threshold solution, accounting its wall-clock cost. With
// ReSolveEpsilon set, near-identical re-solves are served by the incremental
// fast path instead of a full search.
func (m *Manager) Optimize(loads map[string]map[string]float64) (*Solution, error) {
	start := nowWall()
	if sol, ok := m.resolveIncremental(loads); ok {
		m.FastResolveCount++
		m.OptimizeCount++
		m.OptimizeSeconds += nowWall() - start
		return sol, nil
	}
	model := &Model{Profiles: m.Profiles, Targets: m.Targets, Loads: loads}
	sol, err := model.Solve()
	m.OptimizeCount++
	m.OptimizeSeconds += nowWall() - start
	if err == nil {
		m.rememberSolve(loads, sol)
	} else {
		m.lastSol = nil
	}
	return sol, err
}

// rememberSolve snapshots the inputs and output of a successful full solve
// for the incremental fast path: the loads (deep-copied — callers reuse
// their maps), the profile pointers (installing a new *Profile invalidates
// the incumbent) and the solution itself.
func (m *Manager) rememberSolve(loads map[string]map[string]float64, sol *Solution) {
	snap := make(map[string]map[string]float64, len(loads))
	for svc, classes := range loads {
		c := make(map[string]float64, len(classes))
		for class, v := range classes {
			c[class] = v
		}
		snap[svc] = c
	}
	ps := make(map[string]*Profile, len(m.Profiles))
	for name, p := range m.Profiles {
		ps[name] = p
	}
	m.lastSol, m.lastLoads, m.lastProfiles = sol, snap, ps
}

// resolveIncremental serves Optimize from the previous solution when the
// model moved less than ReSolveEpsilon: profiles identical (by pointer),
// the same set of loaded (service, class) pairs, and every load within the
// relative ε of its value at the last full solve. The incumbent's latency
// rows, bounds and percentile assignment do not depend on loads, so only
// feasibility is re-checked (O(targets)) and the per-choice costs are
// recomputed for the new loads (O(services × classes)) — no search.
func (m *Manager) resolveIncremental(loads map[string]map[string]float64) (*Solution, bool) {
	if m.ReSolveEpsilon <= 0 || m.lastSol == nil {
		return nil, false
	}
	if len(m.Profiles) != len(m.lastProfiles) {
		return nil, false
	}
	for name, p := range m.Profiles {
		if m.lastProfiles[name] != p {
			return nil, false
		}
	}
	// Identical load support: a class appearing or disappearing changes
	// which targets are active and which options are admissible, so any
	// support change forces a full solve.
	if len(loads) != len(m.lastLoads) {
		return nil, false
	}
	for svc, classes := range loads {
		old, ok := m.lastLoads[svc]
		if !ok || len(classes) != len(old) {
			return nil, false
		}
		for class, v := range classes {
			ov, okc := old[class]
			if !okc || ov <= 0 || v <= 0 {
				return nil, false
			}
			if math.Abs(v-ov)/ov >= m.ReSolveEpsilon {
				return nil, false
			}
		}
	}
	model := &Model{Profiles: m.Profiles, Targets: m.Targets, Loads: loads}
	// Re-verify the incumbent's certificates against the (load-independent)
	// targets. Inactive targets have no recorded bound, exactly as a full
	// solve would drop them.
	for t, tgt := range m.Targets {
		bound, ok := m.lastSol.BoundMs[tgt.Name]
		if !ok {
			continue
		}
		if bound > model.targetMs(t) {
			return nil, false
		}
	}
	// Rebuild the solution with costs refreshed for the new loads, summing
	// in sorted service order so TotalCPUs is deterministic.
	names := make([]string, 0, len(m.lastSol.Choices))
	for name := range m.lastSol.Choices {
		names = append(names, name)
	}
	sort.Strings(names)
	out := &Solution{
		Choices:          make(map[string]*Choice, len(names)),
		PercentileChoice: make(map[string][]float64, len(m.lastSol.PercentileChoice)),
		BoundMs:          make(map[string]float64, len(m.lastSol.BoundMs)),
	}
	for _, name := range names {
		ch := m.lastSol.Choices[name]
		p := m.Profiles[name]
		if ch.PointIndex >= len(p.Points) {
			return nil, false
		}
		cost, ok := model.optionCost(name, &p.Points[ch.PointIndex])
		if !ok {
			return nil, false
		}
		out.Choices[name] = &Choice{
			Service:     name,
			PointIndex:  ch.PointIndex,
			LPR:         ch.LPR,
			RateSamples: ch.RateSamples,
			CostCPUs:    cost,
		}
		out.TotalCPUs += cost
	}
	for class, percs := range m.lastSol.PercentileChoice {
		out.PercentileChoice[class] = percs
	}
	for class, bound := range m.lastSol.BoundMs {
		out.BoundMs[class] = bound
	}
	return out, true
}

// LoadsFromMix projects per-service per-class loads from an entry mix and a
// total rate, used for the initial optimization before deployment metrics
// exist.
func (m *Manager) LoadsFromMix(mix workload.Mix, totalRPS float64) map[string]map[string]float64 {
	ex := &Explorer{Spec: m.Spec, Mix: mix, TotalRPS: totalRPS}
	return ex.ServiceClassLoads()
}

// LiveLoads reads per-service per-class loads from the running app's last k
// windows.
func (m *Manager) LiveLoads(app *services.App, k int) map[string]map[string]float64 {
	now := app.Eng.Now()
	from := now - sim.Time(k)*app.Window()
	if from < 0 {
		from = 0
	}
	out := map[string]map[string]float64{}
	for _, name := range app.ServiceNames() {
		svc := app.Service(name)
		mm := map[string]float64{}
		for class, counter := range svc.Arrivals {
			if r := counter.Rate(from, now); r > 0 {
				mm[class] = r
			}
		}
		if len(mm) > 0 {
			out[name] = mm
		}
	}
	return out
}

// Run deploys Ursa onto a running application: it solves the model for the
// expected load, applies the initial replica counts, and starts the
// controller and anomaly detector tickers. Stop with Stop.
func (m *Manager) Run(app *services.App, mix workload.Mix, totalRPS float64, cctl ControllerConfig, canom AnomalyConfig) error {
	loads := m.LoadsFromMix(mix, totalRPS)
	sol, err := m.Optimize(loads)
	if err != nil {
		return fmt.Errorf("initial optimization: %w", err)
	}
	m.app = app
	m.Controller = NewController(app, sol, cctl)
	m.Detector = NewDetector(app, sol, m.Targets, canom)
	m.Detector.Recalculate = func(at sim.Time, service string) {
		live := m.LiveLoads(app, 3)
		if newSol, err := m.Optimize(live); err == nil {
			m.Controller.SetSolution(newSol)
			m.Detector.SetSolution(newSol)
		}
	}
	// Infrastructure failures (§V.5's anomaly axis the paper never
	// exercises): when a crash evicts replicas, re-solve against live loads
	// and re-place the lost capacity immediately instead of waiting for the
	// next control tick.
	app.OnEviction = func(evs []services.Eviction) { m.handleEviction(app, evs) }

	// Apply initial allocation in sorted service order: on cluster-bound
	// apps replica placement depends on allocation order, so map order here
	// would leak into node assignment.
	for _, name := range sortedChoiceNames(sol) {
		choice := sol.Choices[name]
		svc := app.Service(name)
		if svc == nil {
			continue
		}
		want := 1
		for class, thr := range choice.LPR {
			if thr <= 0 {
				continue
			}
			if l, ok := loads[name][class]; ok {
				n := int(l/thr) + 1
				if l > 0 && float64(int(l/thr))*thr == l {
					n = int(l / thr)
				}
				if n > want {
					want = n
				}
			}
		}
		svc.SetReplicas(want)
	}

	cfg := cctl
	cfg.defaults()
	m.tickers = append(m.tickers, app.Eng.Every(cfg.Interval, func() { m.Controller.Tick() }))
	acfg := canom
	acfg.defaults()
	m.tickers = append(m.tickers, app.Eng.Every(acfg.Interval, func() { m.Detector.Tick() }))
	return nil
}

// handleEviction is the crash-recovery path: refresh the thresholds from
// live loads (capturing any drift since the last solve), then re-place the
// evicted replicas on the remaining capacity. Placement failures surface as
// UnschedulableEvents; the periodic controller retries on its next tick.
func (m *Manager) handleEviction(app *services.App, evs []services.Eviction) {
	if live := m.LiveLoads(app, 3); len(live) > 0 {
		if sol, err := m.Optimize(live); err == nil {
			m.Controller.SetSolution(sol)
			m.Detector.SetSolution(sol)
		}
	}
	for _, ev := range evs {
		if svc := app.Service(ev.Service); svc != nil {
			svc.SetReplicas(svc.Replicas() + ev.Replicas)
		}
	}
}

// Stop halts the manager's tickers and detaches the eviction hook.
func (m *Manager) Stop() {
	for _, t := range m.tickers {
		t.Stop()
	}
	m.tickers = nil
	if m.app != nil {
		m.app.OnEviction = nil
	}
}

// AvgOptimizeMillis reports the mean wall-clock model-solve latency.
func (m *Manager) AvgOptimizeMillis() float64 {
	if m.OptimizeCount == 0 {
		return 0
	}
	return m.OptimizeSeconds / float64(m.OptimizeCount) * 1e3
}

// AvgDecisionMillis reports the mean wall-clock latency across every
// control-plane decision the manager made: controller Ticks (via the
// controller's DecisionCount/DecisionSeconds) together with model solves
// (deploy-time and detector-triggered, fast-path or full). This is the
// per-decision number Table VI-style comparisons report for Ursa.
func (m *Manager) AvgDecisionMillis() float64 {
	count := m.OptimizeCount
	seconds := m.OptimizeSeconds
	if m.Controller != nil {
		count += m.Controller.DecisionCount
		seconds += m.Controller.DecisionSeconds
	}
	if count == 0 {
		return 0
	}
	return seconds / float64(count) * 1e3
}
