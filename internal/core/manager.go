package core

import (
	"fmt"

	"ursa/internal/services"
	"ursa/internal/sim"
	"ursa/internal/workload"
)

// Manager is the assembled Ursa system (Fig. 5): exploration profiles feed
// the optimization engine, whose LPR thresholds drive the resource
// controller; the anomaly detector watches deployment and triggers
// recalculation. Attach it to a running app with Run.
type Manager struct {
	Spec       services.AppSpec
	Profiles   map[string]*Profile
	Targets    []ClassTarget
	Controller *Controller
	Detector   *Detector

	// OptimizeCount/OptimizeSeconds accumulate wall-clock cost of solving
	// the performance model (the "update" path of Table VI).
	OptimizeCount   int
	OptimizeSeconds float64

	app     *services.App
	tickers []*sim.Ticker
}

// TargetsFor derives the ClassTargets of every class declared in a spec.
func TargetsFor(spec services.AppSpec) []ClassTarget {
	var out []ClassTarget
	for _, cs := range spec.Classes {
		path := ClassPath(&spec, cs.Name)
		if len(path) == 0 {
			continue
		}
		out = append(out, ClassTarget{
			Name:       cs.Name,
			Percentile: cs.SLAPercentile,
			TargetMs:   cs.SLAMillis,
			Path:       path,
		})
	}
	return out
}

// NewManager builds a manager from exploration output.
func NewManager(spec services.AppSpec, profiles map[string]*Profile) *Manager {
	return &Manager{
		Spec:     spec,
		Profiles: profiles,
		Targets:  TargetsFor(spec),
	}
}

// CloneFresh returns a new manager sharing this one's spec and exploration
// profiles but with pristine runtime state — deploying the same exploration
// output onto another application instance, as the paper does across its
// load scenarios.
func (m *Manager) CloneFresh() *Manager {
	return &Manager{Spec: m.Spec, Profiles: m.Profiles, Targets: m.Targets}
}

// Optimize solves the performance model for the given per-service loads and
// returns the threshold solution, accounting its wall-clock cost.
func (m *Manager) Optimize(loads map[string]map[string]float64) (*Solution, error) {
	start := nowWall()
	model := &Model{Profiles: m.Profiles, Targets: m.Targets, Loads: loads}
	sol, err := model.Solve()
	m.OptimizeCount++
	m.OptimizeSeconds += nowWall() - start
	return sol, err
}

// LoadsFromMix projects per-service per-class loads from an entry mix and a
// total rate, used for the initial optimization before deployment metrics
// exist.
func (m *Manager) LoadsFromMix(mix workload.Mix, totalRPS float64) map[string]map[string]float64 {
	ex := &Explorer{Spec: m.Spec, Mix: mix, TotalRPS: totalRPS}
	return ex.ServiceClassLoads()
}

// LiveLoads reads per-service per-class loads from the running app's last k
// windows.
func (m *Manager) LiveLoads(app *services.App, k int) map[string]map[string]float64 {
	now := app.Eng.Now()
	from := now - sim.Time(k)*app.Window()
	if from < 0 {
		from = 0
	}
	out := map[string]map[string]float64{}
	for _, name := range app.ServiceNames() {
		svc := app.Service(name)
		mm := map[string]float64{}
		for class, counter := range svc.Arrivals {
			if r := counter.Rate(from, now); r > 0 {
				mm[class] = r
			}
		}
		if len(mm) > 0 {
			out[name] = mm
		}
	}
	return out
}

// Run deploys Ursa onto a running application: it solves the model for the
// expected load, applies the initial replica counts, and starts the
// controller and anomaly detector tickers. Stop with Stop.
func (m *Manager) Run(app *services.App, mix workload.Mix, totalRPS float64, cctl ControllerConfig, canom AnomalyConfig) error {
	loads := m.LoadsFromMix(mix, totalRPS)
	sol, err := m.Optimize(loads)
	if err != nil {
		return fmt.Errorf("initial optimization: %w", err)
	}
	m.app = app
	m.Controller = NewController(app, sol, cctl)
	m.Detector = NewDetector(app, sol, m.Targets, canom)
	m.Detector.Recalculate = func(at sim.Time, service string) {
		live := m.LiveLoads(app, 3)
		if newSol, err := m.Optimize(live); err == nil {
			m.Controller.SetSolution(newSol)
			m.Detector.SetSolution(newSol)
		}
	}

	// Apply initial allocation.
	for name, choice := range sol.Choices {
		svc := app.Service(name)
		if svc == nil {
			continue
		}
		want := 1
		for class, thr := range choice.LPR {
			if thr <= 0 {
				continue
			}
			if l, ok := loads[name][class]; ok {
				n := int(l/thr) + 1
				if l > 0 && float64(int(l/thr))*thr == l {
					n = int(l / thr)
				}
				if n > want {
					want = n
				}
			}
		}
		svc.SetReplicas(want)
	}

	cfg := cctl
	cfg.defaults()
	m.tickers = append(m.tickers, app.Eng.Every(cfg.Interval, func() { m.Controller.Tick() }))
	acfg := canom
	acfg.defaults()
	m.tickers = append(m.tickers, app.Eng.Every(acfg.Interval, func() { m.Detector.Tick() }))
	return nil
}

// Stop halts the manager's tickers.
func (m *Manager) Stop() {
	for _, t := range m.tickers {
		t.Stop()
	}
	m.tickers = nil
}

// AvgOptimizeMillis reports the mean wall-clock model-solve latency.
func (m *Manager) AvgOptimizeMillis() float64 {
	if m.OptimizeCount == 0 {
		return 0
	}
	return m.OptimizeSeconds / float64(m.OptimizeCount) * 1e3
}
