// Package core implements Ursa, the paper's contribution: the
// backpressure-free threshold profiler (§III), the LPR allocation-space
// explorer (Algorithm 1), the SLA-decomposition performance model and MIP
// optimization engine (§IV), the threshold-based resource controller and the
// anomaly detector (§V). It operates on applications simulated by
// internal/services through the same narrow interface Ursa uses on
// Kubernetes: read metrics, set replica counts.
package core

import (
	"sort"
	"sync"

	"ursa/internal/services"
	"ursa/internal/sim"
	"ursa/internal/stats"
)

// Percentiles is the discretized percentile grid P of the MIP formulation.
// Residuals (100−p) range from 50 down to 0.1 so that both p50 SLAs (video
// pipeline low priority) and p99 SLAs over six-service chains have feasible
// decompositions under Theorem 1.
var Percentiles = []float64{50, 75, 90, 95, 99, 99.5, 99.8, 99.9}

// residualUnit discretizes percentile residuals for the budget DP: one unit
// = 0.1 percentile points.
const residualUnit = 0.1

// residualUnits converts a percentile to budget units (100−p)/0.1.
func residualUnits(p float64) int {
	return int((100-p)/residualUnit + 0.5)
}

// LPRPoint is one explored load-per-replica operating point of a service.
type LPRPoint struct {
	// Replicas the service had when the point was collected.
	Replicas int
	// LPR maps request class → mean requests/second per replica.
	LPR map[string]float64
	// RateSamples maps class → per-window per-replica RPS samples; the
	// resource controller t-tests live load against these.
	RateSamples map[string][]float64
	// Latency maps class → sampled service-latency distribution (ms).
	Latency map[string][]float64
	// Util is the service's mean CPU utilisation at this point (0..1).
	Util float64
}

// MaxLPR reports the largest per-class LPR of the point (used for ordering).
func (p *LPRPoint) MaxLPR() float64 {
	m := 0.0
	for _, v := range p.LPR {
		if v > m {
			m = v
		}
	}
	return m
}

// LatencyAt reports the q-th percentile service latency for a class at this
// point (0 if the class was never observed).
func (p *LPRPoint) LatencyAt(class string, q float64) float64 {
	return stats.Percentile(p.Latency[class], q)
}

// Profile is the complete exploration output for one service.
type Profile struct {
	Service        string
	CPUsPerReplica float64
	// BackpressureUtil is the backpressure-free CPU utilisation threshold
	// from §III profiling (1.0 when the service is not RPC-connected).
	BackpressureUtil float64
	// Points are explored LPR points in ascending load-per-replica order.
	Points []LPRPoint
	// Samples is the number of one-window samples collected.
	Samples int
	// ExploreTime is the simulated wall time the exploration took.
	ExploreTime sim.Time

	// grid caches the percentile tables of every point (see pointGrids).
	// It is dropped by InvalidateGrid/SortPoints and never serialised.
	grid *profileGrid
}

// profileGrid is the lazily built percentile-table cache of a Profile: for
// every LPR point and class, the latency at each entry of the Percentiles
// grid, computed from one sort of the point's sample set. The decision path
// (Solve via compile) reads operating-point latencies thousands of times per
// search; without the cache every read re-selects order statistics from the
// raw samples. The struct is heap-allocated and never copied, so the
// sync.Once is safe; Profiles handed to concurrent solvers share one build.
type profileGrid struct {
	once   sync.Once
	tables []map[string][]float64 // per point: class → [len(Percentiles)]latency
}

// gridCacheMu guards the grid pointer of every Profile. Builds themselves
// run outside the lock (in the per-profile sync.Once), so concurrent solves
// over different profiles do not serialise.
var gridCacheMu sync.Mutex

// pointGrids returns the cached percentile tables, building them on first
// use. tables[pi][class][β] == Percentile(Points[pi].Latency[class],
// Percentiles[β]) bit-for-bit (one sort, grid reads — see
// stats.GridPercentiles).
func (p *Profile) pointGrids() []map[string][]float64 {
	gridCacheMu.Lock()
	g := p.grid
	if g == nil {
		g = &profileGrid{}
		p.grid = g
	}
	gridCacheMu.Unlock()
	g.once.Do(func() {
		tables := make([]map[string][]float64, len(p.Points))
		for i := range p.Points {
			pt := &p.Points[i]
			m := make(map[string][]float64, len(pt.Latency))
			for class, samples := range pt.Latency {
				row := make([]float64, len(Percentiles))
				stats.GridPercentiles(samples, Percentiles, row)
				m[class] = row
			}
			tables[i] = m
		}
		g.tables = tables
	})
	return g.tables
}

// InvalidateGrid drops the cached percentile tables. Call it after mutating
// Points (or their latency samples) in place; code that installs a fresh
// *Profile does not need it.
func (p *Profile) InvalidateGrid() {
	gridCacheMu.Lock()
	p.grid = nil
	gridCacheMu.Unlock()
}

// Precompute eagerly builds the percentile tables so the first Solve after
// exploration does not pay the sort cost on the decision path.
func (p *Profile) Precompute() { p.pointGrids() }

// Clone returns a deep copy of the point: mutating the copy's maps or
// sample slices cannot affect the original.
func (p *LPRPoint) Clone() LPRPoint {
	q := *p
	q.LPR = make(map[string]float64, len(p.LPR))
	for k, v := range p.LPR {
		q.LPR[k] = v
	}
	q.RateSamples = make(map[string][]float64, len(p.RateSamples))
	for k, v := range p.RateSamples {
		q.RateSamples[k] = append([]float64(nil), v...)
	}
	q.Latency = make(map[string][]float64, len(p.Latency))
	for k, v := range p.Latency {
		q.Latency[k] = append([]float64(nil), v...)
	}
	return q
}

// Clone returns a deep copy of the profile. The clone starts with an empty
// percentile-table cache: caches are per-instance so a clone mutated in
// place cannot read stale tables.
func (p *Profile) Clone() *Profile {
	q := *p
	q.grid = nil
	q.Points = make([]LPRPoint, len(p.Points))
	for i := range p.Points {
		q.Points[i] = p.Points[i].Clone()
	}
	return &q
}

// CloneProfiles deep-copies an exploration output map so concurrent or
// successive deployments cannot pollute each other through shared points.
func CloneProfiles(profiles map[string]*Profile) map[string]*Profile {
	out := make(map[string]*Profile, len(profiles))
	for k, v := range profiles {
		out[k] = v.Clone()
	}
	return out
}

// SortPoints orders Points by ascending maximum LPR. Reordering points
// shifts their indices, so any cached percentile tables are dropped.
func (p *Profile) SortPoints() {
	sort.Slice(p.Points, func(i, j int) bool {
		return p.Points[i].MaxLPR() < p.Points[j].MaxLPR()
	})
	p.InvalidateGrid()
}

// PathVisit is one service on a request class's flow, with how many times a
// single request visits it. Per §IV, a service accessed multiple times
// contributes the cumulative latency of all accesses.
type PathVisit struct {
	Service string
	Class   string // effective class at this service (Call overrides)
	Count   int
}

// ClassPath walks a class's flow through an application spec and returns the
// visited services with visit counts. Spawned flows belong to their own
// (derived) class and are excluded.
func ClassPath(spec *services.AppSpec, class string) []PathVisit {
	cs := spec.Class(class)
	if cs == nil || cs.Entry == "" {
		return nil
	}
	type key struct{ svc, class string }
	counts := map[key]int{}
	order := []key{}
	var walkSvc func(svc, cls string)
	var walkSteps func(svc, cls string, steps []services.Step)
	walkSvc = func(svc, cls string) {
		k := key{svc, cls}
		if counts[k] == 0 {
			order = append(order, k)
		}
		counts[k]++
		ss := spec.ServiceSpecByName(svc)
		if ss == nil {
			return
		}
		walkSteps(svc, cls, ss.Handlers[cls])
	}
	walkSteps = func(svc, cls string, steps []services.Step) {
		for _, st := range steps {
			switch s := st.(type) {
			case services.Call:
				c := cls
				if s.Class != "" {
					c = s.Class
				}
				walkSvc(s.Service, c)
			case services.Par:
				for _, br := range s.Branches {
					walkSteps(svc, cls, br)
				}
			}
		}
	}
	walkSvc(cs.Entry, class)
	out := make([]PathVisit, 0, len(order))
	for _, k := range order {
		out = append(out, PathVisit{Service: k.svc, Class: k.class, Count: counts[k]})
	}
	return out
}
