package core

import (
	"testing"

	"ursa/internal/services"
	"ursa/internal/sim"
	"ursa/internal/workload"
)

// controllerFixture deploys the mini app with a hand-built solution whose
// LPR threshold for "back" is thrMap, then returns app+controller.
func controllerFixture(t *testing.T, thr float64, seed int64) (*sim.Engine, *services.App, *Controller, *workload.Generator) {
	t.Helper()
	eng := sim.NewEngine(seed)
	app := services.MustNewApp(eng, miniApp())
	sol := &Solution{
		Choices: map[string]*Choice{
			"back": {
				Service:     "back",
				LPR:         map[string]float64{"req": thr},
				RateSamples: map[string][]float64{"req": {thr * 0.97, thr, thr * 1.03}},
			},
		},
	}
	ctl := NewController(app, sol, ControllerConfig{Interval: sim.Minute, LoadWindows: 3})
	gen := workload.New(eng, app, workload.Constant{Value: 100}, workload.Mix{"req": 1})
	return eng, app, ctl, gen
}

func TestControllerScalesUp(t *testing.T) {
	// Load 100 RPS, threshold 30/replica, 2 initial replicas → wants 4.
	eng, app, ctl, gen := controllerFixture(t, 30, 41)
	gen.Start()
	eng.RunUntil(3 * sim.Minute)
	changes := ctl.Tick()
	if got := changes["back"]; got != 4 {
		t.Fatalf("scale-up to %d, want 4 (changes=%v)", got, changes)
	}
	if app.Service("back").Replicas() != 4 {
		t.Fatal("replica count not applied")
	}
	if ctl.DecisionCount != 1 || ctl.AvgDecisionMillis() < 0 {
		t.Fatal("decision accounting missing")
	}
}

func TestControllerScalesDown(t *testing.T) {
	eng, app, ctl, gen := controllerFixture(t, 80, 42)
	app.Service("back").SetReplicas(6) // over-provisioned: 100/80 → needs 2
	gen.Start()
	eng.RunUntil(3 * sim.Minute)
	ctl.Tick()
	if got := app.Service("back").Replicas(); got != 2 {
		t.Fatalf("scale-down to %d, want 2", got)
	}
}

func TestControllerHoldsNearThreshold(t *testing.T) {
	// Load per replica ≈ threshold: the t-test must suppress flapping.
	eng, app, ctl, gen := controllerFixture(t, 50, 43)
	// 100 RPS / 2 replicas = 50 per replica ≈ threshold exactly.
	gen.Start()
	eng.RunUntil(3 * sim.Minute)
	ctl.Tick()
	got := app.Service("back").Replicas()
	if got != 2 && got != 3 {
		t.Fatalf("replicas = %d, want 2 (hold) or 3 (ceil), not a big jump", got)
	}
}

func TestControllerTracksLoadIncrease(t *testing.T) {
	eng, app, ctl, gen := controllerFixture(t, 30, 44)
	gen.Start()
	tick := eng.Every(sim.Minute, func() { ctl.Tick() })
	defer tick.Stop()
	eng.RunUntil(5 * sim.Minute)
	before := app.Service("back").Replicas()
	gen.SetPattern(workload.Constant{Value: 300})
	eng.RunUntil(12 * sim.Minute)
	after := app.Service("back").Replicas()
	if after <= before {
		t.Fatalf("controller did not scale with load: %d → %d", before, after)
	}
	if after < 10 || after > 13 { // 300/30 = 10 replicas + ceil slack
		t.Fatalf("replicas = %d, want ≈10-13", after)
	}
}

func TestControllerScalesBackAfterBurst(t *testing.T) {
	eng, app, ctl, gen := controllerFixture(t, 30, 45)
	gen.Start()
	tick := eng.Every(sim.Minute, func() { ctl.Tick() })
	defer tick.Stop()
	gen.SetPattern(workload.Burst{Base: 100, Factor: 2.5, Start: 5 * sim.Minute, Len: 5 * sim.Minute})
	eng.RunUntil(9 * sim.Minute)
	peak := app.Service("back").Replicas()
	eng.RunUntil(20 * sim.Minute)
	settled := app.Service("back").Replicas()
	if peak < 7 {
		t.Fatalf("burst not absorbed: peak replicas = %d", peak)
	}
	if settled >= peak {
		t.Fatalf("did not scale back in after burst: peak=%d settled=%d", peak, settled)
	}
}
