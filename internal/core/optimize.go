package core

import (
	"fmt"
	"math"
	"sort"

	"ursa/internal/stats"
)

// ClassTarget is one end-to-end SLA constraint: the x-th percentile latency
// of the class must stay below TargetMs.
type ClassTarget struct {
	Name       string
	Percentile float64
	TargetMs   float64
	Path       []PathVisit
}

// Model is the §IV performance model: per-service exploration profiles plus
// the end-to-end SLA targets and the current per-service load, from which
// the optimization engine derives per-service LPR thresholds.
type Model struct {
	Profiles map[string]*Profile
	Targets  []ClassTarget
	// Loads maps service → class → current arrival rate (requests/second).
	Loads map[string]map[string]float64
	// TargetScale tightens every SLA target by this factor during solving
	// (certified bound ≤ TargetScale × T). Ursa "prioritizes maintaining
	// SLAs and makes conservative decisions" (§VII-E); the default 0.92
	// absorbs sampling noise in the explored percentile estimates. 1
	// disables the margin; the zero value selects the default.
	TargetScale float64
	// EqualSplitPercentiles is an ablation switch: instead of optimising
	// the Theorem 1 percentile assignment, every service on a class's path
	// is forced to the same percentile — the smallest grid value whose
	// residual fits an equal split of the budget. Quantifies how much the
	// MIP's percentile freedom saves.
	EqualSplitPercentiles bool
	// NodeBudget caps the branch-and-bound search as a number of
	// non-dominated leaf feasibility evaluations; the incumbent (if any)
	// stands when the cap is hit. 0 selects the 5M default. Leaves — not
	// raw visited nodes — are counted so that the fast solver and the
	// retained reference (which walks subtrees the fast solver prunes)
	// stop at exactly the same point and stay bit-identical when capped.
	NodeBudget int
}

// targetMs is the effective (safety-scaled) latency target of target t.
func (m *Model) targetMs(t int) float64 {
	s := m.TargetScale
	if s <= 0 {
		s = 0.92
	}
	return m.Targets[t].TargetMs * s
}

// Choice is the selected LPR operating point for one service.
type Choice struct {
	Service    string
	PointIndex int
	// LPR is the per-class load-per-replica scaling threshold a_i^j.
	LPR map[string]float64
	// RateSamples back the controller's t-test threshold comparisons.
	RateSamples map[string][]float64
	// CostCPUs is the projected CPU consumption at the current load.
	CostCPUs float64
}

// Solution is the optimization output: one LPR threshold per service plus
// the percentile decomposition that certifies each SLA.
type Solution struct {
	Choices map[string]*Choice
	// PercentileChoice maps class → path index → chosen percentile.
	PercentileChoice map[string][]float64
	// BoundMs maps class → the certified latency upper bound Σ t_i(x_i).
	BoundMs map[string]float64
	// TotalCPUs is the projected total CPU consumption.
	TotalCPUs float64
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int
}

// sortedChoiceNames returns the solution's service names in ascending
// order. Control-loop code that acts per service (replica scaling, anomaly
// recalculation) iterates this instead of ranging over the Choices map:
// those actions interact — through cluster placement and mid-loop solution
// swaps — so map iteration order would make runs nondeterministic.
func sortedChoiceNames(sol *Solution) []string {
	names := make([]string, 0, len(sol.Choices))
	for name := range sol.Choices {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// term is one additive latency contribution to a class constraint.
type term struct {
	service string
	class   string // effective class at the service
	count   float64
}

// option is one candidate LPR point of a service, with its projected cost.
type option struct {
	index int
	cost  float64
	// lat[t][β]: latency contribution of this option to target t's term for
	// this service at percentile index β (already scaled by visit count),
	// or nil when the service is not on target t's path.
	lat [][]float64
}

// Solve picks the cheapest per-service LPR thresholds whose Theorem 1
// decomposition satisfies every SLA target, by branch-and-bound with an
// exact percentile-assignment DP at the leaves. Targets whose class carries
// no load (declared but currently unused request classes) are dropped — they
// consume no resources and have no distributions to constrain. It returns an
// error when no explored combination is feasible.
//
// The search runs on a pooled solver (solver.go) with cached percentile
// tables, precomputed cost orders and dominance pruning; it returns the same
// picks, bounds and percentile assignment as the retained straightforward
// implementation (reference.go), bit for bit — only Solution.Nodes differs,
// since pruned subtrees are never visited.
func (m *Model) Solve() (*Solution, error) {
	if active := m.activeTargets(); len(active) != len(m.Targets) {
		mm := *m
		mm.Targets = active
		return mm.Solve()
	}
	s := solverPool.Get().(*solver)
	sol, err := s.solve(m)
	s.m = nil
	solverPool.Put(s)
	return sol, err
}

// activeTargets filters out targets whose class sees no load anywhere on
// its path.
func (m *Model) activeTargets() []ClassTarget {
	var out []ClassTarget
	for _, tgt := range m.Targets {
		load := 0.0
		for _, v := range tgt.Path {
			load += m.Loads[v.Service][v.Class]
		}
		if load > 0 {
			out = append(out, tgt)
		}
	}
	return out
}

// compile validates the model and builds the option/term tables.
func (m *Model) compile() (svcNames []string, opts [][]option, terms [][]term, budgets []int, err error) {
	seen := map[string]bool{}
	for _, tgt := range m.Targets {
		if len(tgt.Path) == 0 {
			return nil, nil, nil, nil, fmt.Errorf("core: target %s has an empty path", tgt.Name)
		}
		for _, v := range tgt.Path {
			if !seen[v.Service] {
				seen[v.Service] = true
				svcNames = append(svcNames, v.Service)
			}
		}
	}
	sort.Strings(svcNames)

	terms = make([][]term, len(m.Targets))
	budgets = make([]int, len(m.Targets))
	for t, tgt := range m.Targets {
		budgets[t] = residualUnits(tgt.Percentile)
		for _, v := range tgt.Path {
			terms[t] = append(terms[t], term{service: v.Service, class: v.Class, count: float64(v.Count)})
		}
	}

	opts = make([][]option, len(svcNames))
	for si, name := range svcNames {
		p := m.Profiles[name]
		if p == nil || len(p.Points) == 0 {
			return nil, nil, nil, nil, fmt.Errorf("core: no exploration profile for service %q", name)
		}
		for pi := range p.Points {
			pt := &p.Points[pi]
			cost, ok := m.optionCost(name, pt)
			if !ok {
				continue
			}
			op := option{index: pi, cost: cost, lat: make([][]float64, len(m.Targets))}
			usable := true
			for t := range m.Targets {
				var mine *term
				for k := range terms[t] {
					if terms[t][k].service == name {
						mine = &terms[t][k]
						break
					}
				}
				if mine == nil {
					continue
				}
				samples := pt.Latency[mine.class]
				if len(samples) == 0 {
					usable = false
					break
				}
				row := make([]float64, len(Percentiles))
				for b, pp := range Percentiles {
					row[b] = mine.count * stats.Percentile(samples, pp)
				}
				op.lat[t] = row
			}
			if usable {
				opts[si] = append(opts[si], op)
			}
		}
		if len(opts[si]) == 0 {
			return nil, nil, nil, nil, fmt.Errorf("core: service %q has no usable LPR points for the current classes", name)
		}
	}
	return svcNames, opts, terms, budgets, nil
}

// optionCost projects the CPU consumption of running service at the point's
// LPR thresholds under the model's current loads (Equation 3).
func (m *Model) optionCost(service string, pt *LPRPoint) (float64, bool) {
	p := m.Profiles[service]
	loads := m.Loads[service]
	maxReplicas := 0.0
	for class, a := range loads {
		if a <= 0 {
			continue
		}
		thr, ok := pt.LPR[class]
		if !ok || thr <= 0 {
			return 0, false // point never observed this class
		}
		if r := a / thr; r > maxReplicas {
			maxReplicas = r
		}
	}
	if maxReplicas == 0 {
		maxReplicas = 1
	}
	return maxReplicas * p.CPUsPerReplica, true
}

type assignment struct {
	percentiles []float64
	bound       float64
}

// equalSplitIndex returns the grid index of the smallest percentile whose
// residual fits budget/n (the naive equal-split decomposition), or -1.
func equalSplitIndex(budget, n int) int {
	if n <= 0 {
		return -1
	}
	share := budget / n
	for β := range Percentiles {
		if residualUnits(Percentiles[β]) <= share {
			return β
		}
	}
	return -1
}

// assignPercentiles solves, for one target, the percentile-budget DP: pick a
// percentile per path term minimizing the summed latency bound subject to
// Σ residuals ≤ budget; feasible iff the minimum bound ≤ TargetMs. With
// EqualSplitPercentiles the assignment is fixed to the equal-split
// percentile instead (ablation).
func (m *Model) assignPercentiles(t int, tms []term, opts [][]option, pick []int, svcNames []string, budget int) (assignment, bool) {
	if m.EqualSplitPercentiles {
		return m.assignEqualSplit(t, tms, opts, pick, svcNames, budget)
	}
	type cell struct {
		lat    float64
		choice int8
	}
	residuals := make([]int, len(Percentiles))
	for b, p := range Percentiles {
		residuals[b] = residualUnits(p)
	}
	svcIdx := map[string]int{}
	for i, n := range svcNames {
		svcIdx[n] = i
	}

	// rows[k]: latency contribution of term k per percentile index.
	rows := make([][]float64, len(tms))
	for k, tm := range tms {
		si := svcIdx[tm.service]
		for _, op := range opts[si] {
			if op.index == pick[si] {
				rows[k] = op.lat[t]
				break
			}
		}
		if rows[k] == nil {
			return assignment{}, false
		}
	}

	const inf = math.MaxFloat64 / 4
	dp := make([][]cell, len(tms)+1)
	for k := range dp {
		dp[k] = make([]cell, budget+1)
		for b := range dp[k] {
			dp[k][b] = cell{lat: inf, choice: -1}
		}
	}
	dp[0][budget].lat = 0
	for k := 0; k < len(tms); k++ {
		for b := 0; b <= budget; b++ {
			if dp[k][b].lat >= inf {
				continue
			}
			for β, r := range residuals {
				if r > b {
					continue
				}
				nb := b - r
				nl := dp[k][b].lat + rows[k][β]
				if nl < dp[k+1][nb].lat {
					dp[k+1][nb] = cell{lat: nl, choice: int8(β)}
				}
			}
		}
	}
	bestB, bestLat := -1, inf
	for b := 0; b <= budget; b++ {
		if dp[len(tms)][b].lat < bestLat {
			bestLat = dp[len(tms)][b].lat
			bestB = b
		}
	}
	if bestB == -1 || bestLat > m.targetMs(t) {
		return assignment{}, false
	}
	// Recover choices.
	percs := make([]float64, len(tms))
	b := bestB
	for k := len(tms); k >= 1; k-- {
		β := dp[k][b].choice
		percs[k-1] = Percentiles[β]
		b += residuals[β]
	}
	return assignment{percentiles: percs, bound: bestLat}, true
}

// assignEqualSplit is the ablation percentile policy: every term gets the
// same percentile (equal residual split).
func (m *Model) assignEqualSplit(t int, tms []term, opts [][]option, pick []int, svcNames []string, budget int) (assignment, bool) {
	β := equalSplitIndex(budget, len(tms))
	if β == -1 {
		return assignment{}, false
	}
	svcIdx := map[string]int{}
	for i, n := range svcNames {
		svcIdx[n] = i
	}
	bound := 0.0
	percs := make([]float64, len(tms))
	for k, tm := range tms {
		si := svcIdx[tm.service]
		var row []float64
		for _, op := range opts[si] {
			if op.index == pick[si] {
				row = op.lat[t]
				break
			}
		}
		if row == nil {
			return assignment{}, false
		}
		bound += row[β]
		percs[k] = Percentiles[β]
	}
	if bound > m.targetMs(t) {
		return assignment{}, false
	}
	return assignment{percentiles: percs, bound: bound}, true
}

// EstimateBound computes, for one class, the tightest Theorem 1 latency
// bound from per-(service,class) latency samples of a single measurement
// window — the estimator behind Fig. 9/10. dists maps "service/class" keys
// to window samples. Each sample set is sorted once and all grid percentiles
// read from the sorted slice; the DP state lives in a pooled arena, so
// fig9-style sweeps (thousands of calls) allocate nothing in steady state.
func EstimateBound(tgt ClassTarget, dists map[string][]float64) (float64, bool) {
	a := estimatePool.Get().(*estimateArena)
	bound, ok := a.estimateBound(tgt, dists)
	estimatePool.Put(a)
	return bound, ok
}
