package core

import (
	"fmt"

	"ursa/internal/services"
	"ursa/internal/sim"
	"ursa/internal/stats"
	"ursa/internal/workload"
)

// ExploreConfig parameterises the allocation-space exploration (Algorithm 1).
type ExploreConfig struct {
	// WindowsPerPoint is how many sampling windows each LPR point collects
	// (the paper collects 10 samples per iteration).
	WindowsPerPoint int
	// Window is the sampling window (once per minute in the paper).
	Window sim.Time
	// SLAViolationFreq F_sla terminates exploration when exceeded (0.10).
	SLAViolationFreq float64
	// Step is the replica reduction per iteration.
	Step int
	// WarmupWindows are discarded before sampling starts.
	WarmupWindows int
	// UtilTarget sizes the initial generous provisioning of every service
	// ("adequate CPUs to keep the microservice's latency low").
	UtilTarget float64
	// Seed drives the exploration run.
	Seed int64
}

func (c *ExploreConfig) defaults() {
	if c.WindowsPerPoint <= 0 {
		c.WindowsPerPoint = 10
	}
	if c.Window <= 0 {
		c.Window = sim.Minute
	}
	if c.SLAViolationFreq <= 0 {
		c.SLAViolationFreq = 0.10
	}
	if c.Step <= 0 {
		c.Step = 1
	}
	if c.WarmupWindows < 0 {
		c.WarmupWindows = 1
	} else if c.WarmupWindows == 0 {
		c.WarmupWindows = 1
	}
	if c.UtilTarget <= 0 {
		c.UtilTarget = 0.25
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Explorer runs per-service LPR exploration for one application and
// workload (the exploration controller of §V.2).
type Explorer struct {
	Spec services.AppSpec
	Mix  workload.Mix
	// TotalRPS is the replayed workload's aggregate request rate.
	TotalRPS float64
	// Thresholds maps service → backpressure-free CPU utilisation
	// threshold (§III); missing entries default to 1.0.
	Thresholds map[string]float64
}

// EntryRates reports the per-class injection rates of the replayed trace.
func (e *Explorer) EntryRates() map[string]float64 {
	out := map[string]float64{}
	for _, class := range e.Spec.EntryClasses() {
		out[class] = e.TotalRPS * e.Mix.Fraction(class)
	}
	return out
}

// ServiceClassLoads estimates each service's per-class arrival rate from
// the class paths and the replayed trace rates. Derived classes inherit the
// injection rate of the flows that spawn them.
func (e *Explorer) ServiceClassLoads() map[string]map[string]float64 {
	rates := e.classRates()
	out := map[string]map[string]float64{}
	for class, rate := range rates {
		for _, v := range ClassPath(&e.Spec, class) {
			m := out[v.Service]
			if m == nil {
				m = map[string]float64{}
				out[v.Service] = m
			}
			m[v.Class] += rate * float64(v.Count)
		}
	}
	return out
}

// classRates reports the effective injection rate per class, including
// derived classes (each Spawn of class c at rate r contributes r to c).
func (e *Explorer) classRates() map[string]float64 {
	rates := e.EntryRates()
	// Propagate spawn rates: walk each entry class's path once, counting
	// Spawn steps (including those reached through Calls).
	type item struct {
		class string
		rate  float64
	}
	queue := []item{}
	for c, r := range rates {
		queue = append(queue, item{c, r})
	}
	for guard := 0; len(queue) > 0; guard++ {
		if guard > 10000 {
			panic("core: spawn graph appears cyclic")
		}
		it := queue[0]
		queue = queue[1:]
		for _, v := range ClassPath(&e.Spec, it.class) {
			ss := e.Spec.ServiceSpecByName(v.Service)
			if ss == nil {
				continue
			}
			for _, sp := range spawnsIn(ss.Handlers[v.Class]) {
				add := it.rate * float64(v.Count)
				rates[sp.Class] += add
				queue = append(queue, item{sp.Class, add})
			}
		}
	}
	return rates
}

func spawnsIn(steps []services.Step) []services.Spawn {
	var out []services.Spawn
	for _, st := range steps {
		switch s := st.(type) {
		case services.Spawn:
			out = append(out, s)
		case services.Par:
			for _, br := range s.Branches {
				out = append(out, spawnsIn(br)...)
			}
		}
	}
	return out
}

// nominalCPUMs sums the mean CPU cost (ms) of a handler, including the
// ingress cost for RPC services.
func nominalCPUMs(ss *services.ServiceSpec, class string) float64 {
	var walk func(steps []services.Step) float64
	walk = func(steps []services.Step) float64 {
		t := 0.0
		for _, st := range steps {
			switch s := st.(type) {
			case services.Compute:
				t += s.MeanMs
			case services.Par:
				for _, br := range s.Branches {
					t += walk(br)
				}
			}
		}
		return t
	}
	return walk(ss.Handlers[class]) + ss.IngressCostMs
}

// GenerousReplicas computes, for every service, a replica count that keeps
// CPU utilisation near cfg.UtilTarget under the replayed trace.
func (e *Explorer) GenerousReplicas(utilTarget float64) map[string]int {
	loads := e.ServiceClassLoads()
	out := map[string]int{}
	for i := range e.Spec.Services {
		ss := &e.Spec.Services[i]
		demand := 0.0 // core-seconds per second
		for class, rate := range loads[ss.Name] {
			demand += rate * nominalCPUMs(ss, class) / 1e3
		}
		n := int(demand/(ss.CPUs*utilTarget)) + 1
		if n < ss.InitialReplicas {
			n = ss.InitialReplicas
		}
		out[ss.Name] = n
	}
	return out
}

// ExploreService runs Algorithm 1 for one service on a fresh deployment of
// the application: every other service is generously provisioned, the
// workload trace is replayed, and the target's replicas are reduced step by
// step while recording latency distributions per LPR — terminating as soon
// as the CPU utilisation reaches the backpressure-free threshold or the SLA
// violation frequency reaches F_sla.
func (e *Explorer) ExploreService(name string, cfg ExploreConfig) (*Profile, error) {
	cfg.defaults()
	target := e.Spec.ServiceSpecByName(name)
	if target == nil {
		return nil, fmt.Errorf("core: unknown service %q", name)
	}
	generous := e.GenerousReplicas(cfg.UtilTarget)

	spec := e.Spec
	spec.Services = append([]services.ServiceSpec(nil), e.Spec.Services...)
	for i := range spec.Services {
		spec.Services[i].InitialReplicas = generous[spec.Services[i].Name]
		spec.Services[i].MaxReplicas = 0
	}
	eng := sim.NewEngine(cfg.Seed)
	app, err := services.NewAppWindow(eng, spec, cfg.Window)
	if err != nil {
		return nil, err
	}
	gen := workload.New(eng, app, workload.Constant{Value: e.TotalRPS}, e.Mix)
	gen.Start()
	eng.RunUntil(sim.Time(cfg.WarmupWindows) * cfg.Window)

	svc := app.Service(name)
	bpThreshold := 1.0
	if t, ok := e.Thresholds[name]; ok && t > 0 {
		bpThreshold = t
	}
	slaClasses := e.classesThrough(name)

	profile := &Profile{
		Service:          name,
		CPUsPerReplica:   target.CPUs,
		BackpressureUtil: bpThreshold,
	}
	r := generous[name]
	for r >= 1 {
		svc.SetReplicas(r)
		start := eng.Now()
		busy0, cap0 := svc.CPUAccounting()
		eng.RunFor(sim.Time(cfg.WindowsPerPoint) * cfg.Window)
		end := eng.Now()
		busy1, cap1 := svc.CPUAccounting()
		profile.Samples += cfg.WindowsPerPoint
		profile.ExploreTime += end - start

		util := 0.0
		if cap1 > cap0 {
			util = (busy1 - busy0) / (cap1 - cap0)
		}
		fsla := e.slaViolationFreq(app, slaClasses, start, end, cfg.Window)
		if util >= bpThreshold || fsla >= cfg.SLAViolationFreq {
			break // Algorithm 1: terminate without recording this point
		}

		point := LPRPoint{
			Replicas:    r,
			LPR:         map[string]float64{},
			RateSamples: map[string][]float64{},
			Latency:     map[string][]float64{},
			Util:        util,
		}
		for class, cs := range svc.Arrivals {
			var rateSamples []float64
			for w := start; w < end; w += cfg.Window {
				rateSamples = append(rateSamples, cs.Rate(w, w+cfg.Window)/float64(r))
			}
			mean := stats.Mean(rateSamples)
			if mean <= 0 {
				continue
			}
			point.LPR[class] = mean
			point.RateSamples[class] = rateSamples
			if rec := svc.RespByClass.Class(class); rec != nil {
				point.Latency[class] = append([]float64(nil), rec.Between(start, end)...)
			}
		}
		if len(point.LPR) > 0 {
			profile.Points = append(profile.Points, point)
		}
		r -= cfg.Step
	}
	profile.SortPoints()
	if len(profile.Points) == 0 {
		return profile, fmt.Errorf("core: exploration of %q recorded no feasible LPR point", name)
	}
	// Build the percentile tables now, off the decision path: the first
	// Solve over this profile reads cached rows instead of sorting sample
	// sets while the control plane waits.
	profile.Precompute()
	return profile, nil
}

// classesThrough lists classes whose path visits the service.
func (e *Explorer) classesThrough(name string) []services.ClassSpec {
	var out []services.ClassSpec
	for _, cs := range e.Spec.Classes {
		for _, v := range ClassPath(&e.Spec, cs.Name) {
			if v.Service == name {
				out = append(out, cs)
				break
			}
		}
	}
	return out
}

// slaViolationFreq reports the fraction of windows in [start, end) where any
// relevant class's end-to-end percentile exceeded its SLA. A per-window
// percentile is only meaningful with enough samples — estimating a p99 from
// 50 requests reads the maximum order statistic and fires spuriously — so
// classes whose windows are too thin are judged once on the pooled interval
// instead (violated → every window counts as violated).
func (e *Explorer) slaViolationFreq(app *services.App, classes []services.ClassSpec, start, end sim.Time, window sim.Time) float64 {
	total := 0
	for w := start; w < end; w += window {
		total++
	}
	if total == 0 {
		return 0
	}
	violatedWindows := map[sim.Time]bool{}
	for _, cs := range classes {
		rec := app.E2E.Class(cs.Name)
		if rec == nil {
			continue
		}
		minSamples := minSamplesForPercentile(cs.SLAPercentile)
		pooled := false
		for w := start; w < end; w += window {
			if rec.Count(w, w+window) < minSamples {
				pooled = true
				break
			}
		}
		if pooled {
			if rec.Count(start, end) >= minSamples &&
				rec.PercentileBetween(start, end, cs.SLAPercentile) > cs.SLAMillis {
				for w := start; w < end; w += window {
					violatedWindows[w] = true
				}
			}
			continue
		}
		for w := start; w < end; w += window {
			if rec.PercentileBetween(w, w+window, cs.SLAPercentile) > cs.SLAMillis {
				violatedWindows[w] = true
			}
		}
	}
	return float64(len(violatedWindows)) / float64(total)
}

// minSamplesForPercentile is the smallest sample count at which the p-th
// percentile is estimated from ≥3 tail observations.
func minSamplesForPercentile(p float64) int {
	tail := (100 - p) / 100
	if tail <= 0 {
		return 1 << 30
	}
	n := int(3/tail + 0.5)
	if n < 20 {
		n = 20
	}
	return n
}

// ExplorationSummary aggregates a full-application exploration (Table V).
type ExplorationSummary struct {
	Samples int
	// WallTime is the end-to-end exploration time: services are explored
	// in parallel, so it is the maximum per-service time.
	WallTime sim.Time
	// TotalTime is the sum of per-service exploration times.
	TotalTime sim.Time
}

// ExploreAll explores every service and returns the per-service profiles
// plus the Table V accounting.
func (e *Explorer) ExploreAll(cfg ExploreConfig) (map[string]*Profile, ExplorationSummary, error) {
	cfg.defaults()
	profiles := map[string]*Profile{}
	var sum ExplorationSummary
	for i := range e.Spec.Services {
		name := e.Spec.Services[i].Name
		p, err := e.ExploreService(name, cfg)
		if err != nil {
			return nil, sum, fmt.Errorf("exploring %s: %w", name, err)
		}
		profiles[name] = p
		sum.Samples += p.Samples
		sum.TotalTime += p.ExploreTime
		if p.ExploreTime > sum.WallTime {
			sum.WallTime = p.ExploreTime
		}
	}
	return profiles, sum, nil
}
